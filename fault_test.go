package ringmesh

// Facade-level fault-injection, forensics and sweep-hardening tests.
// Golden compatibility (an enabled-but-empty plan changing nothing)
// lives in golden_test.go next to the pinned results.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// stressWorkload drives every PM at full load so fault effects are
// visible immediately.
func stressWorkload() Workload {
	return Workload{R: 1, C: 1, T: 16, ReadProb: 0.7}
}

// TestFaultPlanDeterminism: the same (plan, seed) must reproduce the
// run bit for bit, and an effective fault must actually change the
// measurements relative to the fault-free run.
func TestFaultPlanDeterminism(t *testing.T) {
	cfg := Config{
		Network:   "ring",
		Topology:  "2:3:4",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      7,
		FaultPlan: "slowdown@500+2000:node=3,factor=4; degrade@1000+1500:node=8,factor=2",
	}
	run := func(c Config) Result {
		res, err := Run(c, QuickRunOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(cfg), run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan and seed diverged:\n%+v\n%+v", a, b)
	}
	clean := cfg
	clean.FaultPlan = ""
	if c := run(clean); reflect.DeepEqual(a, c) {
		t.Fatal("fault plan had no effect on the measurements")
	}
}

// TestFaultPlanRandDeterminism covers the generated-plan path: a
// "rand:" plan is a pure function of its own seed, independent of the
// run seed.
func TestFaultPlanRandDeterminism(t *testing.T) {
	cfg := Config{
		Network:   "mesh",
		Topology:  "4x4",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      7,
		FaultPlan: "rand:events=5,seed=42,horizon=3000",
	}
	a, err := Run(cfg, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same generated plan diverged:\n%+v\n%+v", a, b)
	}
}

func TestFaultPlanBadSyntaxRejected(t *testing.T) {
	_, err := NewSystem(Config{
		Network: "ring", Topology: "2:4", LineBytes: 32,
		Workload: PaperWorkload(), FaultPlan: "stutter@oops",
	})
	if err == nil {
		t.Fatal("malformed fault plan accepted")
	}
	_, err = NewSystem(Config{
		Network: "ring", Topology: "2:4", LineBytes: 32,
		Workload: PaperWorkload(), FaultPlan: "stutter@10+10:node=99",
	})
	if err == nil {
		t.Fatal("out-of-range fault node accepted")
	}
}

// TestDiagnoseStallFacade: a deliberately deadlocked configuration —
// VC protection off, a transient dead link at full load — returns an
// error that unwraps to ErrStalled and carries a diagnosis naming at
// least one wait-for cycle, retrievable through DiagnoseStall.
func TestDiagnoseStallFacade(t *testing.T) {
	cfg := Config{
		Network:    "ring",
		Topology:   "2:4",
		LineBytes:  32,
		Workload:   stressWorkload(),
		Seed:       1,
		UnsafeNoVC: true,
		FaultPlan:  "stutter@3000+4000:node=0",
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(RunOptions{WarmupCycles: 2000, BatchCycles: 30000, Batches: 4,
		WatchdogCycles: 9000, FailOnStall: true})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	diag := DiagnoseStall(err)
	if diag == nil {
		t.Fatal("DiagnoseStall returned nil for a stall error")
	}
	if len(diag.Cycles) == 0 {
		t.Fatalf("diagnosis names no wait-for cycle: %s", diag.Summary)
	}
	if diag.BufferedFlits == 0 {
		t.Error("deadlocked network reports no buffered flits")
	}
	if diag.Summary == "" {
		t.Error("empty diagnosis summary")
	}
	// Sanity: DiagnoseStall on a non-stall error is nil.
	if d := DiagnoseStall(fmt.Errorf("unrelated")); d != nil {
		t.Fatalf("DiagnoseStall(unrelated) = %+v", d)
	}
}

func TestRunTimeoutFacade(t *testing.T) {
	sys, err := NewSystem(Config{
		Network: "ring", Topology: "2:4", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(RunOptions{WarmupCycles: 1 << 40, BatchCycles: 1 << 40, Batches: 1,
		Timeout: time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRunContextCancelFacade(t *testing.T) {
	sys, err := NewSystem(Config{
		Network: "ring", Topology: "2:4", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.RunContext(ctx, RunOptions{WarmupCycles: 1 << 40, BatchCycles: 1 << 40, Batches: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSweepContinuesPastRuntimeFailure exercises the scheduler's
// failure classification directly: a runtime failure on one size must
// not stop the remaining sizes, and the completed points must come
// back alongside the joined error.
func TestSweepContinuesPastRuntimeFailure(t *testing.T) {
	pts, err := sweep(context.Background(), []int{4, 8, 16},
		SweepOptions{Workers: 2},
		func(ctx context.Context, n int) (SweepPoint, error) {
			if n == 8 {
				return SweepPoint{}, fmt.Errorf("ringmesh: size 8 failed after 3 attempt(s): %w", ErrTimeout)
			}
			return SweepPoint{Nodes: n, Topology: fmt.Sprint(n), Attempts: 1}, nil
		})
	if err == nil {
		t.Fatal("failing point reported no error")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("joined error %v does not unwrap to ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Errorf("error %q does not report the retry count", err)
	}
	if len(pts) != 2 || pts[0].Nodes != 4 || pts[1].Nodes != 16 {
		t.Fatalf("surviving points = %+v, want sizes 4 and 16", pts)
	}
}

// TestSweepFatalStopsScheduling: a configuration error on an early
// size must stop later sizes from being scheduled at all.
func TestSweepFatalStopsScheduling(t *testing.T) {
	var ran []int
	_, err := sweep(context.Background(), []int{4, 8, 16},
		SweepOptions{Workers: 1},
		func(ctx context.Context, n int) (SweepPoint, error) {
			ran = append(ran, n)
			return SweepPoint{}, &fatalPointError{fmt.Errorf("size %d: bad config", n)}
		})
	if err == nil {
		t.Fatal("fatal point reported no error")
	}
	if len(ran) != 1 {
		t.Fatalf("scheduled %v after a fatal failure, want just the first size", ran)
	}
}

// TestSweepPointTimeoutRetries drives the real retry pipeline: every
// attempt times out, so the point must be retried exactly Retries
// times on derived seeds and the final error must carry both the
// timeout and the attempt count.
func TestSweepPointTimeoutRetries(t *testing.T) {
	base := Config{Network: "ring", LineBytes: 32, Workload: PaperWorkload(), Seed: 5}
	pts, err := SweepSizes(base, []int{8}, SweepOptions{
		Run:          RunOptions{WarmupCycles: 1 << 40, BatchCycles: 1 << 40, Batches: 1},
		PointTimeout: 2 * time.Millisecond,
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	if len(pts) != 0 {
		t.Fatalf("timing-out sweep returned points: %+v", pts)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempt(s)") {
		t.Fatalf("err %q does not report 3 attempts", err)
	}
}

// TestSweepMixedTimeout is the acceptance scenario end to end: one
// point times out (run schedule far beyond the budget is only
// reachable for it via per-point wall clock), the rest complete.
func TestSweepMixedTimeout(t *testing.T) {
	base := Config{Network: "ring", LineBytes: 32, Workload: PaperWorkload(), Seed: 5}
	pts, err := sweep(context.Background(), []int{4, 8, 16},
		SweepOptions{Workers: 3},
		func(ctx context.Context, n int) (SweepPoint, error) {
			opt := SweepOptions{Run: QuickRunOptions()}
			if n == 8 {
				// This size gets an impossible schedule and a tiny
				// budget: the real sweepPoint path must time out,
				// retry on derived seeds, and report the attempts.
				opt.Run = RunOptions{WarmupCycles: 1 << 40, BatchCycles: 1 << 40, Batches: 1}
				opt.PointTimeout = 2 * time.Millisecond
				opt.Retries = 1
			}
			return sweepPoint(ctx, base, n, opt)
		})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "size 8 failed after 2 attempt(s)") {
		t.Fatalf("err %q does not name size 8 with 2 attempts", err)
	}
	if len(pts) != 2 || pts[0].Nodes != 4 || pts[1].Nodes != 16 {
		t.Fatalf("surviving points = %+v, want sizes 4 and 16", pts)
	}
	for _, p := range pts {
		if p.Attempts != 1 {
			t.Errorf("size %d Attempts = %d, want 1", p.Nodes, p.Attempts)
		}
	}
}

func TestSweepContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := Config{Network: "ring", LineBytes: 32, Workload: PaperWorkload(), Seed: 1}
	pts, err := SweepSizesContext(ctx, base, []int{4, 8}, SweepOptions{Run: QuickRunOptions()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(pts) != 0 {
		t.Fatalf("canceled sweep returned points: %+v", pts)
	}
}

// TestSweepCanceledMidSweep cancels after the first point completes:
// finished work is returned, unstarted sizes never run, and the error
// wraps context.Canceled.
func TestSweepCanceledMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran []int
	pts, err := sweep(ctx, []int{4, 8, 16}, SweepOptions{Workers: 1},
		func(ctx context.Context, n int) (SweepPoint, error) {
			ran = append(ran, n)
			if n == 4 {
				cancel() // the operator hits ^C while the first point runs
			}
			return SweepPoint{Nodes: n, Attempts: 1}, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 1 || ran[0] != 4 {
		t.Fatalf("ran %v after cancellation, want just size 4", ran)
	}
	if len(pts) != 1 || pts[0].Nodes != 4 {
		t.Fatalf("completed points = %+v, want the finished size 4", pts)
	}
}
