module ringmesh

go 1.22
