package ringmesh

import (
	"reflect"
	"runtime"
	"testing"

	"ringmesh/internal/pool"
)

// TestSweepEngineWorkersDoNotChangeResults pins two properties of
// engine-level parallelism inside a sweep: the per-point clamp keeps
// sweep workers x engine workers within the machine (pool.CapInner),
// and whatever worker count survives the clamp, the points are
// bit-identical to a fully serial sweep — Workers is execution-only
// all the way down.
func TestSweepEngineWorkersDoNotChangeResults(t *testing.T) {
	t.Parallel()
	base := Config{
		Network:   "ring",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      goldenSeed,
	}
	opt := SweepOptions{Run: QuickRunOptions()}
	sizes := []int{8, 24}

	serial, err := SweepSizes(base, sizes, opt)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Workers = 8 // clamped per point to NumCPU / sweep workers
	popt := opt
	popt.Workers = 2
	got, err := SweepSizes(par, sizes, popt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, serial) {
		t.Errorf("sweep with engine workers diverged from serial\n got: %+v\nwant: %+v", got, serial)
	}

	// The clamp itself: the effective per-point worker count never
	// multiplies past the CPU budget.
	if eff := pool.CapInner(runtime.NumCPU(), popt.Workers, par.Workers); eff*popt.Workers > max(popt.Workers, runtime.NumCPU()) {
		t.Errorf("clamp allows %d sweep x %d engine workers on %d CPUs",
			popt.Workers, eff, runtime.NumCPU())
	}
}
