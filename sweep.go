package ringmesh

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"ringmesh/internal/pool"
	"ringmesh/internal/rng"
)

// SweepPoint is one measurement of a size sweep.
type SweepPoint struct {
	// Nodes is the processor count of this point.
	Nodes int `json:"nodes"`
	// Topology is the resolved geometry in the model's notation
	// ("2:3:4" for rings, "8x8" for meshes).
	Topology string `json:"topology"`
	// Result holds the measurements.
	Result Result `json:"result"`
	// Attempts is how many runs this point took (1 = first try).
	// Retries re-run the point on a seed derived from (base seed,
	// size, attempt), so a retried point is still reproducible.
	Attempts int `json:"attempts"`
}

// SweepOptions controls sweep execution.
type SweepOptions struct {
	// Run is the per-point measurement schedule.
	Run RunOptions
	// Workers bounds concurrent simulations. Zero (the zero value, not
	// DefaultSweepOptions' 4) means 1: the sweep runs serially. Values
	// below zero behave like zero.
	Workers int
	// Telemetry, when non-nil, receives one JSON line per completed
	// point as it finishes (summary latency, throughput and
	// utilization — see sweepTelemetry). Lines arrive in completion
	// order, not size order; writes are serialized, so any io.Writer
	// is safe.
	Telemetry io.Writer
	// PointTimeout bounds each point's wall-clock time (0 = none).
	// It fills Run.Timeout when that is unset; a timed-out point is
	// retried like any other runtime failure.
	PointTimeout time.Duration
	// Retries is how many times a point that failed at run time
	// (timeout, stall with FailOnStall, model panic) is re-run before
	// its failure is recorded. Each retry uses a fresh seed derived
	// from the base seed so a transient pathology is not replayed
	// bit-for-bit. Configuration errors are never retried.
	Retries int
	// RetryBackoff is the wait before the first retry; it doubles on
	// each subsequent one (0 = retry immediately).
	RetryBackoff time.Duration
}

// sweepTelemetry is the per-point summary emitted on
// SweepOptions.Telemetry.
type sweepTelemetry struct {
	Nodes        int       `json:"nodes"`
	Topology     string    `json:"topology"`
	Latency      float64   `json:"latency_cycles"`
	LatencyCI95  float64   `json:"latency_ci95"`
	Throughput   float64   `json:"throughput"`
	RingUtil     []float64 `json:"ring_util,omitempty"`
	MeshUtil     float64   `json:"mesh_util,omitempty"`
	Observations int64     `json:"observations"`
	Saturated    bool      `json:"saturated,omitempty"`
	Stalled      bool      `json:"stalled,omitempty"`
	Attempts     int       `json:"attempts,omitempty"`
}

// DefaultSweepOptions pairs the default run schedule with modest
// parallelism.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{Run: DefaultRunOptions(), Workers: 4}
}

// fatalPointError marks a per-point error that should stop the sweep
// from scheduling further points: configuration errors (every size
// would fail the same way) and context cancellation. Runtime
// failures — timeouts, stalls, panics — are not fatal; the point's
// failure is recorded and the remaining sizes still run.
type fatalPointError struct{ err error }

func (e *fatalPointError) Error() string { return e.err.Error() }
func (e *fatalPointError) Unwrap() error { return e.err }

// SweepSizes measures the base configuration at each node count,
// re-deriving the geometry per size (base.Topology is ignored; rings
// use the Table 2 methodology, meshes take the square root). Points
// come back sorted by size.
//
// Failure handling: a configuration error stops new points from being
// scheduled (every size would fail the same way), while a runtime
// failure — timeout, stall with FailOnStall, model panic — is retried
// per opt.Retries and, once exhausted, recorded without disturbing
// the remaining sizes. Either way the completed points are returned,
// alongside an error joining every per-point failure (errors.Join).
func SweepSizes(base Config, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return SweepSizesContext(context.Background(), base, sizes, opt)
}

// SweepSizesContext is SweepSizes with cancellation: when ctx is
// done, in-flight points abort at their next cycle chunk, no new
// points start, and the completed points come back with an error
// wrapping ctx.Err().
func SweepSizesContext(ctx context.Context, base Config, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return sweep(ctx, sizes, opt, func(ctx context.Context, n int) (SweepPoint, error) {
		return sweepPoint(ctx, base, n, opt)
	})
}

// sweepPoint runs one size with the retry schedule. Attempt 0 uses
// the base seed unchanged — a sweep without failures is bit-identical
// to one run point by point — and each retry derives a fresh seed
// from (base seed, size, attempt).
func sweepPoint(ctx context.Context, base Config, n int, opt SweepOptions) (SweepPoint, error) {
	for attempt := 0; ; attempt++ {
		cfg := base
		cfg.Topology = ""
		cfg.Nodes = n
		// Engine-level workers (base.Workers) multiply with the sweep's
		// own pool, so cap them to the share of the machine each point
		// actually gets: sweep workers x engine workers never exceeds
		// NumCPU. Results are unchanged — Workers is execution-only.
		cfg.Workers = pool.CapInner(runtime.NumCPU(), opt.Workers, cfg.Workers)
		if attempt > 0 {
			cfg.Seed = rng.DeriveSeed(base.Seed, uint64(n)<<8+uint64(attempt))
		}
		sys, err := NewSystem(cfg)
		if err != nil {
			return SweepPoint{}, &fatalPointError{fmt.Errorf("ringmesh: size %d: %w", n, err)}
		}
		ro := opt.Run
		if opt.PointTimeout > 0 && ro.Timeout == 0 {
			ro.Timeout = opt.PointTimeout
		}
		res, err := sys.RunContext(ctx, ro)
		if err == nil {
			return SweepPoint{Nodes: n, Topology: sys.Topology(), Result: res, Attempts: attempt + 1}, nil
		}
		if ctx.Err() != nil {
			return SweepPoint{}, &fatalPointError{fmt.Errorf("ringmesh: size %d: %w", n, err)}
		}
		if attempt >= opt.Retries {
			return SweepPoint{}, fmt.Errorf("ringmesh: size %d failed after %d attempt(s): %w",
				n, attempt+1, err)
		}
		if d := opt.RetryBackoff << attempt; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return SweepPoint{}, &fatalPointError{fmt.Errorf("ringmesh: size %d: %w", n, ctx.Err())}
			case <-t.C:
			}
		}
	}
}

// SweepRingSizes measures the base ring configuration at each node
// count, deriving the hierarchy per size via the Table 2 methodology
// (base.Topology is ignored). Points come back sorted by size.
//
// Deprecated: thin wrapper over SweepSizes with Network "ring".
func SweepRingSizes(base RingConfig, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return SweepSizes(base.generic(), sizes, opt)
}

// SweepMeshSizes measures the base mesh configuration at each (square)
// node count. Points come back sorted by size.
//
// Deprecated: thin wrapper over SweepSizes with Network "mesh".
func SweepMeshSizes(base MeshConfig, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return SweepSizes(base.generic(), sizes, opt)
}

// sweep fans the per-point function out over the shared bounded
// worker pool (internal/pool, also behind exp's point grids and the
// serving daemon's job queue). Every error is collected (never just
// the first). Fatal errors — configuration mistakes and cancellation —
// stop new points from being scheduled; runtime failures leave the
// rest of the sweep running. Completed points are always returned,
// even on error.
func sweep(ctx context.Context, sizes []int, opt SweepOptions, point func(context.Context, int) (SweepPoint, error)) ([]SweepPoint, error) {
	var mu sync.Mutex
	var out []SweepPoint
	isFatal := func(err error) bool {
		var fatal *fatalPointError
		return errors.As(err, &fatal)
	}
	errs := pool.ForEach(ctx, opt.Workers, len(sizes), isFatal, func(i int) error {
		n := sizes[i]
		p, err := point(ctx, n)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if opt.Telemetry != nil {
			if terr := writeTelemetry(opt.Telemetry, p); terr != nil {
				// A broken telemetry sink poisons every later point the
				// same way: fatal, like a configuration error.
				return &fatalPointError{fmt.Errorf("ringmesh: telemetry: size %d: %w", n, terr)}
			}
		}
		out = append(out, p)
		return nil
	})
	if ctx.Err() != nil && len(errs) == 0 {
		errs = append(errs, fmt.Errorf("ringmesh: sweep canceled: %w", ctx.Err()))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	if len(errs) > 0 {
		// Joined in message order so the report is stable regardless
		// of which worker finished first.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return out, errors.Join(errs...)
	}
	return out, nil
}

// writeTelemetry emits one JSON line summarizing a finished sweep
// point. Called with the sweep mutex held.
func writeTelemetry(w io.Writer, p SweepPoint) error {
	attempts := p.Attempts
	if attempts == 1 {
		attempts = 0 // omit the unremarkable case from the stream
	}
	line, err := json.Marshal(sweepTelemetry{
		Nodes:        p.Nodes,
		Topology:     p.Topology,
		Latency:      p.Result.LatencyCycles,
		LatencyCI95:  p.Result.LatencyCI95,
		Throughput:   p.Result.Throughput,
		RingUtil:     p.Result.RingUtilization,
		MeshUtil:     p.Result.MeshUtilization,
		Observations: p.Result.Observations,
		Saturated:    p.Result.Saturated,
		Stalled:      p.Result.Stalled,
		Attempts:     attempts,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", line)
	return err
}
