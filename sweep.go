package ringmesh

import (
	"fmt"
	"sort"
	"sync"
)

// SweepPoint is one measurement of a size sweep.
type SweepPoint struct {
	// Nodes is the processor count of this point.
	Nodes int
	// Topology is the ring hierarchy used ("" for meshes).
	Topology string
	// Result holds the measurements.
	Result Result
}

// SweepOptions controls sweep execution.
type SweepOptions struct {
	// Run is the per-point measurement schedule.
	Run RunOptions
	// Workers bounds concurrent simulations (0 = 1).
	Workers int
}

// DefaultSweepOptions pairs the default run schedule with modest
// parallelism.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{Run: DefaultRunOptions(), Workers: 4}
}

// SweepRingSizes measures the base ring configuration at each node
// count, deriving the hierarchy per size via the Table 2 methodology
// (base.Topology is ignored). Points come back sorted by size.
func SweepRingSizes(base RingConfig, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return sweep(sizes, opt, func(n int) (SweepPoint, error) {
		cfg := base
		cfg.Topology = ""
		cfg.Nodes = n
		spec, err := ringSpecFor(cfg)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("ringmesh: size %d: %w", n, err)
		}
		cfg.Topology = spec.String()
		res, err := RunRing(cfg, opt.Run)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{Nodes: n, Topology: cfg.Topology, Result: res}, nil
	})
}

// SweepMeshSizes measures the base mesh configuration at each (square)
// node count. Points come back sorted by size.
func SweepMeshSizes(base MeshConfig, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return sweep(sizes, opt, func(n int) (SweepPoint, error) {
		cfg := base
		cfg.Nodes = n
		res, err := RunMesh(cfg, opt.Run)
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{Nodes: n, Result: res}, nil
	})
}

func sweep(sizes []int, opt SweepOptions, point func(int) (SweepPoint, error)) ([]SweepPoint, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	var out []SweepPoint
	for _, n := range sizes {
		n := n
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			p, err := point(n)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out = append(out, p)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out, nil
}
