package ringmesh

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// SweepPoint is one measurement of a size sweep.
type SweepPoint struct {
	// Nodes is the processor count of this point.
	Nodes int
	// Topology is the resolved geometry in the model's notation
	// ("2:3:4" for rings, "8x8" for meshes).
	Topology string
	// Result holds the measurements.
	Result Result
}

// SweepOptions controls sweep execution.
type SweepOptions struct {
	// Run is the per-point measurement schedule.
	Run RunOptions
	// Workers bounds concurrent simulations (0 = 1).
	Workers int
	// Telemetry, when non-nil, receives one JSON line per completed
	// point as it finishes (summary latency, throughput and
	// utilization — see sweepTelemetry). Lines arrive in completion
	// order, not size order; writes are serialized, so any io.Writer
	// is safe.
	Telemetry io.Writer
}

// sweepTelemetry is the per-point summary emitted on
// SweepOptions.Telemetry.
type sweepTelemetry struct {
	Nodes        int       `json:"nodes"`
	Topology     string    `json:"topology"`
	Latency      float64   `json:"latency_cycles"`
	LatencyCI95  float64   `json:"latency_ci95"`
	Throughput   float64   `json:"throughput"`
	RingUtil     []float64 `json:"ring_util,omitempty"`
	MeshUtil     float64   `json:"mesh_util,omitempty"`
	Observations int64     `json:"observations"`
	Saturated    bool      `json:"saturated,omitempty"`
	Stalled      bool      `json:"stalled,omitempty"`
}

// DefaultSweepOptions pairs the default run schedule with modest
// parallelism.
func DefaultSweepOptions() SweepOptions {
	return SweepOptions{Run: DefaultRunOptions(), Workers: 4}
}

// SweepSizes measures the base configuration at each node count,
// re-deriving the geometry per size (base.Topology is ignored; rings
// use the Table 2 methodology, meshes take the square root). Points
// come back sorted by size.
//
// All failing points are reported: the error joins every per-point
// error (see errors.Join), and no new points are scheduled once one
// has failed.
func SweepSizes(base Config, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return sweep(sizes, opt, func(n int) (SweepPoint, error) {
		cfg := base
		cfg.Topology = ""
		cfg.Nodes = n
		sys, err := NewSystem(cfg)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("ringmesh: size %d: %w", n, err)
		}
		res, err := sys.Run(opt.Run)
		if err != nil {
			return SweepPoint{}, fmt.Errorf("ringmesh: size %d: %w", n, err)
		}
		return SweepPoint{Nodes: n, Topology: sys.Topology(), Result: res}, nil
	})
}

// SweepRingSizes measures the base ring configuration at each node
// count, deriving the hierarchy per size via the Table 2 methodology
// (base.Topology is ignored). Points come back sorted by size.
//
// Deprecated: thin wrapper over SweepSizes with Network "ring".
func SweepRingSizes(base RingConfig, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return SweepSizes(base.generic(), sizes, opt)
}

// SweepMeshSizes measures the base mesh configuration at each (square)
// node count. Points come back sorted by size.
//
// Deprecated: thin wrapper over SweepSizes with Network "mesh".
func SweepMeshSizes(base MeshConfig, sizes []int, opt SweepOptions) ([]SweepPoint, error) {
	return SweepSizes(base.generic(), sizes, opt)
}

// sweep fans the per-point function out over a bounded worker pool.
// Every error is collected (never just the first), and scheduling
// stops at the first failure so a misconfigured sweep fails fast
// instead of burning cycles on the remaining sizes.
func sweep(sizes []int, opt SweepOptions, point func(int) (SweepPoint, error)) ([]SweepPoint, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var errs []error
	var out []SweepPoint
	for _, n := range sizes {
		n := n
		mu.Lock()
		failed := len(errs) > 0
		mu.Unlock()
		if failed {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			p, err := point(n)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if opt.Telemetry != nil {
				if terr := writeTelemetry(opt.Telemetry, p); terr != nil {
					errs = append(errs, fmt.Errorf("ringmesh: telemetry: size %d: %w", n, terr))
					return
				}
			}
			out = append(out, p)
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		// Joined in size order so the report is stable regardless of
		// which worker finished first.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, errors.Join(errs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out, nil
}

// writeTelemetry emits one JSON line summarizing a finished sweep
// point. Called with the sweep mutex held.
func writeTelemetry(w io.Writer, p SweepPoint) error {
	line, err := json.Marshal(sweepTelemetry{
		Nodes:        p.Nodes,
		Topology:     p.Topology,
		Latency:      p.Result.LatencyCycles,
		LatencyCI95:  p.Result.LatencyCI95,
		Throughput:   p.Result.Throughput,
		RingUtil:     p.Result.RingUtilization,
		MeshUtil:     p.Result.MeshUtilization,
		Observations: p.Result.Observations,
		Saturated:    p.Result.Saturated,
		Stalled:      p.Result.Stalled,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", line)
	return err
}
