#!/usr/bin/env bash
# Smoke test for the serving daemon: build ringmeshd, boot it with
# per-job engine parallelism (-engine-workers) and profiling enabled
# (-pprof), check health and metrics (including latency histogram
# buckets and a CPU profile fetch), submit the same run twice and
# assert the second is answered from the result cache — including a
# resubmission with a different "workers" value, which must still hit
# (the cache key ignores the execution-only Workers field) — fetch the
# job's lifecycle trace, then shut down gracefully with SIGTERM.
#
# Then the two resilience claims, end to end:
#   - durability: boot with -cache-dir, kill -9 mid-load, restart over
#     the same directory, and prove the pre-crash result is served
#     from the disk tier (the cache-hit counters are the proof, not
#     wall-clock);
#   - partial failure: boot a 1-coordinator/2-worker trio, kill the
#     workers mid-sweep, and prove the response is a partial-success
#     merge (completed points + structured point_errors + degraded),
#     with retries and breaker trips visible on /metrics.
#
# Later stages add overload (priority admission + shedding), the
# crash-safe journal, and multi-fidelity serving (an auto request
# answered analytically under load, upgraded to exact in the
# background).
#
# No dependencies beyond curl and the Go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)/ringmeshd
log=$(mktemp)
go build -o "$bin" ./cmd/ringmeshd

"$bin" -addr 127.0.0.1:0 -engine-workers 2 -pprof >"$log" 2>&1 &
pid=$!
cleanup() { kill "$pid" 2>/dev/null || true; }
trap cleanup EXIT

# The daemon logs its resolved ephemeral address on startup as a
# structured "listening" event with an addr= attribute.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*msg=listening addr=\([0-9.:]*\).*/\1/p' "$log" | head -n 1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "FAIL: ringmeshd did not start"; cat "$log"; exit 1
fi
base="http://$addr"

curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "FAIL: healthz"; exit 1; }

body='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":42},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'

first=$(curl -fsS -X POST "$base/v1/runs" -d "$body" | tr -d '[:space:]')
id=$(printf '%s' "$first" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$id" ]; then
  echo "FAIL: no job id in response: $first"; exit 1
fi

doc=""
for _ in $(seq 1 200); do
  doc=$(curl -fsS "$base/v1/jobs/$id" | tr -d '[:space:]')
  case "$doc" in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'*) echo "FAIL: job failed: $doc"; exit 1 ;;
  esac
  sleep 0.1
done
case "$doc" in
  *'"state":"done"'*) ;;
  *) echo "FAIL: job never finished: $doc"; exit 1 ;;
esac

second=$(curl -fsS -X POST "$base/v1/runs" -d "$body" | tr -d '[:space:]')
case "$second" in
  *'"cached":true'*) ;;
  *) echo "FAIL: identical resubmission not served from cache: $second"; exit 1 ;;
esac
case "$second" in
  *'"state":"done"'*) ;;
  *) echo "FAIL: cached resubmission not complete: $second"; exit 1 ;;
esac

# The same logical run spelled with an explicit engine worker count
# must still hit the cache: "workers" is execution-only (the parallel
# engine is bit-identical to serial) and never enters the cache key.
wbody='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":42,"workers":4},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'
third=$(curl -fsS -X POST "$base/v1/runs" -d "$wbody" | tr -d '[:space:]')
case "$third" in
  *'"cached":true'*) ;;
  *) echo "FAIL: resubmission with workers=4 not served from cache: $third"; exit 1 ;;
esac

metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^ringmeshd_cache_hits_total [1-9]' \
  || { echo "FAIL: no cache hit recorded:"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^ringmeshd_cache_misses_total 1$' \
  || { echo "FAIL: expected exactly one cache miss:"; echo "$metrics"; exit 1; }
# Telemetry: the completed job left run-duration histogram buckets
# labeled by family and outcome, and runtime health gauges are live.
echo "$metrics" | grep -q 'ringmeshd_job_run_seconds_bucket{family="mesh",outcome="done",le="+Inf"}' \
  || { echo "FAIL: no run-duration histogram buckets:"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^go_goroutines ' \
  || { echo "FAIL: no runtime gauges:"; echo "$metrics"; exit 1; }

# The job's lifecycle trace is served as Chrome trace-event JSON.
trace=$(curl -fsS "$base/v1/jobs/$id/trace")
case "$trace" in
  *'"traceEvents"'*'"queue-wait"'*) ;;
  *) echo "FAIL: job trace missing lifecycle spans: $trace"; exit 1 ;;
esac

# Profiling is mounted (we booted with -pprof): a 1-second CPU profile
# must come back non-empty.
prof=$(mktemp)
curl -fsS -o "$prof" "$base/debug/pprof/profile?seconds=1" \
  || { echo "FAIL: pprof profile fetch"; exit 1; }
[ -s "$prof" ] || { echo "FAIL: empty CPU profile"; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
  echo "FAIL: ringmeshd exited $rc on SIGTERM"; cat "$log"; exit 1
fi

echo "PASS: ringmeshd basic smoke ($base, job $id cached on resubmission)"

# ---------------------------------------------------------------------
# Shared helpers for the multi-daemon stages below.

pids=()
cleanup_all() { for p in "${pids[@]}"; do kill -9 "$p" 2>/dev/null || true; done; }
trap cleanup_all EXIT

# boot LOGFILE ARGS... starts a daemon (in this shell, so wait works),
# registers it for cleanup, and reports it via BOOT_PID / BOOT_ADDR.
boot() {
  local blog=$1; shift
  "$bin" -addr 127.0.0.1:0 "$@" >"$blog" 2>&1 &
  BOOT_PID=$!
  pids+=("$BOOT_PID")
  BOOT_ADDR=""
  for _ in $(seq 1 100); do
    BOOT_ADDR=$(sed -n 's/.*msg=listening addr=\([0-9.:]*\).*/\1/p' "$blog" | head -n 1)
    [ -n "$BOOT_ADDR" ] && break
    sleep 0.1
  done
  if [ -z "$BOOT_ADDR" ]; then
    echo "FAIL: daemon did not start"; cat "$blog"; exit 1
  fi
}

# await BASE ID polls a job to "done", failing the script otherwise.
await() {
  local d=""
  for _ in $(seq 1 300); do
    d=$(curl -fsS "$1/v1/jobs/$2" | tr -d '[:space:]')
    case "$d" in
      *'"state":"done"'*) printf '%s' "$d"; return 0 ;;
      *'"state":"failed"'*) echo "FAIL: job $2 failed: $d" >&2; exit 1 ;;
    esac
    sleep 0.1
  done
  echo "FAIL: job $2 never finished: $d" >&2; exit 1
}

submit_id() { # submit_id BASE BODY -> job id
  local r
  r=$(curl -fsS -X POST "$1/v1/runs" -d "$2" | tr -d '[:space:]')
  printf '%s' "$r" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

# ---------------------------------------------------------------------
# Stage 2: durability across kill -9. Compute a result with the disk
# tier on, crash the daemon without ceremony while a second job is
# mid-load, restart over the same directory, and demand the pre-crash
# key is a disk hit — zero recomputation, proven by counters.

cachedir=$(mktemp -d)
dlog1=$(mktemp)
boot "$dlog1" -cache-dir "$cachedir"
dpid1=$BOOT_PID; dbase1="http://$BOOT_ADDR"

durable='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":7},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'
did=$(submit_id "$dbase1" "$durable")
[ -n "$did" ] || { echo "FAIL: no job id from durable daemon"; exit 1; }
await "$dbase1" "$did" >/dev/null

# The result must already be on disk (write-through before completion).
ls "$cachedir"/*.rmr >/dev/null 2>&1 \
  || { echo "FAIL: no durable entry after completed job"; ls -la "$cachedir"; exit 1; }

# Put the daemon under load and kill it mid-job: -9, no drain, no
# flushing — the atomic-rename protocol must already have made the
# completed result safe.
heavy='{"config":{"network":"mesh","nodes":256,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":8},"options":{"warmup_cycles":20000,"batch_cycles":20000,"batches":8}}'
curl -fsS -X POST "$dbase1/v1/runs" -d "$heavy" -o /dev/null
kill -9 "$dpid1"
wait "$dpid1" 2>/dev/null || true

dlog2=$(mktemp)
boot "$dlog2" -cache-dir "$cachedir"
dpid2=$BOOT_PID; dbase2="http://$BOOT_ADDR"

replay=$(curl -fsS -X POST "$dbase2/v1/runs" -d "$durable" | tr -d '[:space:]')
case "$replay" in
  *'"cached":true'*'"state":"done"'*|*'"state":"done"'*'"cached":true'*) ;;
  *) echo "FAIL: pre-crash result not served after restart: $replay"; exit 1 ;;
esac
dmetrics=$(curl -fsS "$dbase2/metrics")
echo "$dmetrics" | grep -q '^ringmeshd_disk_cache_hits_total 1$' \
  || { echo "FAIL: restart hit not served from the disk tier:"; echo "$dmetrics" | grep disk_cache; exit 1; }
echo "$dmetrics" | grep -q '^ringmeshd_cache_misses_total 0$' \
  || { echo "FAIL: restart caused a recompute:"; echo "$dmetrics" | grep cache_misses; exit 1; }
kill -TERM "$dpid2"; wait "$dpid2" || { echo "FAIL: durable daemon exited dirty"; exit 1; }

echo "PASS: durability smoke (kill -9 survived; restart served job from disk, 0 misses)"

# ---------------------------------------------------------------------
# Stage 3: coordinator partial failure. A 1-coordinator/2-worker trio
# runs a sweep; both workers are killed -9 mid-sweep. The merged
# response must carry every completed point plus structured errors for
# the rest — degraded, not void — with the retry/breaker machinery
# visible on /metrics.

wlog1=$(mktemp); wlog2=$(mktemp); clog=$(mktemp)
boot "$wlog1"
wpid1=$BOOT_PID; waddr1=$BOOT_ADDR
boot "$wlog2"
wpid2=$BOOT_PID; waddr2=$BOOT_ADDR
boot "$clog" -coordinator -worker-addrs "$waddr1,$waddr2"
cpid=$BOOT_PID; cbase="http://$BOOT_ADDR"

# Small sizes first (they complete before the kill), big sizes last
# (they are still in flight when the workers die).
sweep='{"config":{"network":"mesh","line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":9},"options":{"warmup_cycles":4000,"batch_cycles":4000,"batches":6},"sizes":[16,36,64,100,400,576,784,900]}'
sres=$(curl -fsS -X POST "$cbase/v1/sweeps" -d "$sweep" | tr -d '[:space:]')
sid=$(printf '%s' "$sres" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$sid" ] || { echo "FAIL: no sweep id: $sres"; exit 1; }

# Wait until at least one point has completed, then kill the fleet.
progressed=""
for _ in $(seq 1 300); do
  sdoc=$(curl -fsS "$cbase/v1/jobs/$sid" | tr -d '[:space:]')
  case "$sdoc" in
    *'"progress":0,'*|*'"progress":0}'*) sleep 0.1 ;;
    *) progressed=yes; break ;;
  esac
done
[ -n "$progressed" ] || { echo "FAIL: sweep made no progress: $sdoc"; exit 1; }
kill -9 "$wpid1" "$wpid2"
{ wait "$wpid1" "$wpid2"; } 2>/dev/null || true

# The sweep must still terminate "done" — degraded, with the
# completed points merged in and the dead points classified.
sfinal=""
for _ in $(seq 1 600); do
  sfinal=$(curl -fsS "$cbase/v1/jobs/$sid" | tr -d '[:space:]')
  case "$sfinal" in
    *'"state":"done"'*|*'"state":"failed"'*) break ;;
  esac
  sleep 0.1
done
case "$sfinal" in
  *'"state":"done"'*) ;;
  *) echo "FAIL: sweep did not merge after worker loss: $sfinal"; exit 1 ;;
esac
case "$sfinal" in
  *'"degraded":true'*) ;;
  *) echo "FAIL: sweep not marked degraded: $sfinal"; exit 1 ;;
esac
case "$sfinal" in
  *'"points":['*'"nodes":16'*) ;;
  *) echo "FAIL: completed points missing from merged response: $sfinal"; exit 1 ;;
esac
case "$sfinal" in
  *'"point_errors":['*'"kind":'*) ;;
  *) echo "FAIL: no structured per-point errors: $sfinal"; exit 1 ;;
esac

cmetrics=$(curl -fsS "$cbase/metrics")
echo "$cmetrics" | grep -q '^ringmeshd_coord_retries_total [1-9]' \
  || { echo "FAIL: no retries recorded:"; echo "$cmetrics" | grep coord; exit 1; }
echo "$cmetrics" | grep -q '^ringmeshd_coord_breaker_trips_total [1-9]' \
  || { echo "FAIL: no breaker trips recorded:"; echo "$cmetrics" | grep coord; exit 1; }
echo "$cmetrics" | grep -q '^ringmeshd_coord_points_failed_total [1-9]' \
  || { echo "FAIL: no failed points recorded:"; echo "$cmetrics" | grep coord; exit 1; }

# Dispatch attempts (including retries against the dead fleet) are
# visible in the sweep's trace.
strace=$(curl -fsS "$cbase/v1/jobs/$sid/trace")
case "$strace" in
  *'"dispatch"'*) ;;
  *) echo "FAIL: no dispatch spans in sweep trace"; exit 1 ;;
esac

kill -TERM "$cpid"; wait "$cpid" || { echo "FAIL: coordinator exited dirty"; exit 1; }

echo "PASS: coordinator smoke (fleet killed mid-sweep; merged degraded response with retries+breaker trips)"

# ---------------------------------------------------------------------
# Stage 4: overload. One worker, a tiny queue, a long occupier, and a
# background flood filling every slot. An interactive submission must
# still admit (evicting background), further background work must be
# shed with 503 + Retry-After + the structured body, and the per-class
# admit/shed counters must tell the story on /metrics.

flog=$(mktemp)
boot "$flog" -workers 1 -queue 3
fpid=$BOOT_PID; fbase="http://$BOOT_ADDR"

occupier='{"config":{"network":"mesh","nodes":256,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":20},"options":{"warmup_cycles":20000,"batch_cycles":20000,"batches":8}}'
oid=$(submit_id "$fbase" "$occupier")
[ -n "$oid" ] || { echo "FAIL: no occupier id"; exit 1; }
# Wait until the worker picks it up, so the flood below only competes
# for queue slots, never for the worker.
started=""
for _ in $(seq 1 100); do
  case "$(curl -fsS "$fbase/v1/jobs/$oid" | tr -d '[:space:]')" in
    *'"state":"running"'*) started=yes; break ;;
  esac
  sleep 0.1
done
[ -n "$started" ] || { echo "FAIL: occupier never started"; exit 1; }

bgbody() { printf '{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":%d},"class":"background","options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}' "$1"; }
bglast=""
for i in 21 22 23; do
  bglast=$(submit_id "$fbase" "$(bgbody "$i")")
  [ -n "$bglast" ] || { echo "FAIL: background flood job $i rejected early"; exit 1; }
done

# Interactive (default class) still admits at the full queue.
inter='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":24},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'
iid=$(submit_id "$fbase" "$inter")
[ -n "$iid" ] || { echo "FAIL: interactive submission shed under background flood"; exit 1; }

# Its victim: the newest background job, failed with the shed taxonomy.
vdoc=$(curl -fsS "$fbase/v1/jobs/$bglast" | tr -d '[:space:]')
case "$vdoc" in
  *'"state":"failed"'*'"kind":"shed"'*|*'"kind":"shed"'*'"state":"failed"'*) ;;
  *) echo "FAIL: evicted background job not failed/shed: $vdoc"; exit 1 ;;
esac

# One more background submission has nothing to evict. Spelled with an
# explicit "simulate" tier it keeps the hard backpressure contract:
# 503, Retry-After, structured body — never a silent downgrade.
shedhdr=$(mktemp); shedbody=$(mktemp)
simbody='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":25},"class":"background","fidelity":"simulate","options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'
code=$(curl -sS -D "$shedhdr" -o "$shedbody" -w '%{http_code}' -X POST "$fbase/v1/runs" -d "$simbody")
[ "$code" = "503" ] || { echo "FAIL: saturated explicit-simulate POST = $code"; cat "$shedbody"; exit 1; }
grep -qi '^retry-after: [1-9]' "$shedhdr" || { echo "FAIL: shed 503 missing Retry-After:"; cat "$shedhdr"; exit 1; }
grep -q '"class": *"background"' "$shedbody" || { echo "FAIL: shed body missing class:"; cat "$shedbody"; exit 1; }
grep -q '"retry_after_ms": *[1-9]' "$shedbody" || { echo "FAIL: shed body missing retry_after_ms:"; cat "$shedbody"; exit 1; }

# The same submission with no named tier degrades instead of 503: an
# immediate analytic answer, labeled and marked degraded.
deg=$(curl -fsS -X POST "$fbase/v1/runs" -d "$(bgbody 26)" | tr -d '[:space:]')
case "$deg" in
  *'"degraded":true'*) ;;
  *) echo "FAIL: fidelity-agnostic background run not degraded: $deg"; exit 1 ;;
esac
case "$deg" in
  *'"fidelity":"analytic"'*'"max_rel_err":'*) ;;
  *) echo "FAIL: degraded answer not analytic with a bound: $deg"; exit 1 ;;
esac

# Liveness vs readiness: both up, readiness carrying per-class depths.
curl -fsS "$fbase/healthz" | grep -q '"ok"' || { echo "FAIL: healthz under flood"; exit 1; }
curl -fsS "$fbase/readyz" | grep -q '"interactive"' || { echo "FAIL: readyz missing class depths"; exit 1; }

fmetrics=$(curl -fsS "$fbase/metrics")
echo "$fmetrics" | grep -q 'ringmeshd_admit_total{class="interactive"} 2' \
  || { echo "FAIL: interactive admit counter:"; echo "$fmetrics" | grep admit; exit 1; }
# Four background sheds: the evicted flood job, the explicit-simulate
# 503, and the degraded run's own failed admit plus its (also shed)
# upgrade attempt.
echo "$fmetrics" | grep -q 'ringmeshd_shed_total{class="background"} 4' \
  || { echo "FAIL: background shed counter:"; echo "$fmetrics" | grep shed; exit 1; }
echo "$fmetrics" | grep -q '^ringmeshd_fidelity_degraded_total 1$' \
  || { echo "FAIL: degrade counter:"; echo "$fmetrics" | grep fidelity; exit 1; }

# The interactive job completes once the occupier finishes; the two
# surviving background jobs drain behind it.
await "$fbase" "$iid" >/dev/null
kill -TERM "$fpid"; wait "$fpid" || { echo "FAIL: flood daemon exited dirty"; exit 1; }

echo "PASS: overload smoke (interactive admitted+completed under background flood; shed with Retry-After)"

# ---------------------------------------------------------------------
# Stage 5: crash-safe journal. Boot with -journal-dir, stack one
# running job and three queued ones, kill -9 — no drain, no fsync
# beyond what every append already did — then restart over the same
# directory and demand all four complete under their original IDs,
# with the replay visible on /metrics.

journaldir=$(mktemp -d)
jlog1=$(mktemp)
boot "$jlog1" -workers 1 -journal-dir "$journaldir"
jpid1=$BOOT_PID; jbase1="http://$BOOT_ADDR"

jids=()
jid=$(submit_id "$jbase1" "$occupier")   # long: still running at the kill
[ -n "$jid" ] || { echo "FAIL: no journaled occupier id"; exit 1; }
jids+=("$jid")
for i in 31 32 33; do
  body=$(printf '{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":%d},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}' "$i")
  jid=$(submit_id "$jbase1" "$body")
  [ -n "$jid" ] || { echo "FAIL: journaled job $i rejected"; exit 1; }
  jids+=("$jid")
done

kill -9 "$jpid1"
wait "$jpid1" 2>/dev/null || true

jlog2=$(mktemp)
boot "$jlog2" -workers 0 -journal-dir "$journaldir"
jpid2=$BOOT_PID; jbase2="http://$BOOT_ADDR"

for jid in "${jids[@]}"; do
  await "$jbase2" "$jid" >/dev/null
done

jmetrics=$(curl -fsS "$jbase2/metrics")
echo "$jmetrics" | grep -q '^ringmeshd_journal_replayed_total 4$' \
  || { echo "FAIL: replay counter:"; echo "$jmetrics" | grep journal; exit 1; }
echo "$jmetrics" | grep -q '^ringmeshd_journal_quarantined_total 0$' \
  || { echo "FAIL: clean journal quarantined records:"; echo "$jmetrics" | grep journal; exit 1; }

kill -TERM "$jpid2"; wait "$jpid2" || { echo "FAIL: journal daemon exited dirty"; exit 1; }

echo "PASS: journal smoke (kill -9 with 4 unfinished jobs; restart replayed all under original IDs)"

# ---------------------------------------------------------------------
# Stage 6: multi-fidelity serving. Flood a single-worker daemon with
# background jobs, then ask for a cache-cold run at fidelity "auto":
# the answer must come back immediately — analytic-labeled, carrying
# its recorded error bound and a background upgrade job ID — while the
# exact result lands later under its own cache key. The upgrade job
# must finish with an unlabeled exact result, and the fidelity
# counters must tell the story on /metrics.

alog=$(mktemp)
boot "$alog" -workers 1
apid=$BOOT_PID; abase="http://$BOOT_ADDR"

# Occupy the worker and stack a background flood behind it, so the
# auto request below cannot possibly be answered by a quick exact run.
aoid=$(submit_id "$abase" "$occupier")
[ -n "$aoid" ] || { echo "FAIL: no occupier id on fidelity daemon"; exit 1; }
for i in 41 42 43; do
  fid=$(submit_id "$abase" "$(bgbody "$i")")
  [ -n "$fid" ] || { echo "FAIL: background flood job $i rejected"; exit 1; }
done

autobody='{"config":{"network":"mesh","nodes":36,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":44},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2},"fidelity":"auto"}'
auto=$(curl -fsS -X POST "$abase/v1/runs" -d "$autobody" | tr -d '[:space:]')
case "$auto" in
  *'"state":"done"'*'"fidelity":"analytic"'*|*'"fidelity":"analytic"'*'"state":"done"'*) ;;
  *) echo "FAIL: auto request not answered analytically: $auto"; exit 1 ;;
esac
case "$auto" in
  *'"max_rel_err":'*) ;;
  *) echo "FAIL: analytic answer missing its error bound: $auto"; exit 1 ;;
esac
upid=$(printf '%s' "$auto" | sed -n 's/.*"upgrade_job_id":"\([^"]*\)".*/\1/p')
[ -n "$upid" ] || { echo "FAIL: auto answer missing upgrade job id: $auto"; exit 1; }

# The upgrade runs at the back of the background queue and must land
# the exact, unlabeled result.
updoc=$(await "$abase" "$upid")
case "$updoc" in
  *'"fidelity":"analytic"'*) echo "FAIL: upgrade result still analytic: $updoc"; exit 1 ;;
  *'"observations":'*) ;;
  *) echo "FAIL: upgrade result not a simulation: $updoc"; exit 1 ;;
esac

# A repeat auto request now prefers the cached exact result: no label,
# no new upgrade.
again=$(curl -fsS -X POST "$abase/v1/runs" -d "$autobody" | tr -d '[:space:]')
case "$again" in
  *'"cached":true'*) ;;
  *) echo "FAIL: repeat auto request missed the upgraded result: $again"; exit 1 ;;
esac
case "$again" in
  *'"fidelity":"analytic"'*) echo "FAIL: repeat auto request served the estimate over exact: $again"; exit 1 ;;
esac

ametrics=$(curl -fsS "$abase/metrics")
echo "$ametrics" | grep -q 'ringmeshd_fidelity_requests_total{fidelity="auto"} 2' \
  || { echo "FAIL: auto request counter:"; echo "$ametrics" | grep fidelity; exit 1; }
echo "$ametrics" | grep -q '^ringmeshd_fidelity_analytic_answers_total 1$' \
  || { echo "FAIL: analytic answer counter:"; echo "$ametrics" | grep fidelity; exit 1; }
echo "$ametrics" | grep -q '^ringmeshd_fidelity_upgrades_total 1$' \
  || { echo "FAIL: upgrade counter:"; echo "$ametrics" | grep fidelity; exit 1; }
echo "$ametrics" | grep -q 'ringmeshd_fidelity_answer_seconds_bucket{fidelity="analytic",le="+Inf"}' \
  || { echo "FAIL: no per-fidelity latency histogram:"; echo "$ametrics" | grep fidelity; exit 1; }

kill -TERM "$apid"; wait "$apid" || { echo "FAIL: fidelity daemon exited dirty"; exit 1; }

echo "PASS: fidelity smoke (auto answered analytically under flood; upgrade landed the exact result)"
echo "PASS: ringmeshd smoke"
