#!/usr/bin/env bash
# Smoke test for the serving daemon: build ringmeshd, boot it with
# per-job engine parallelism (-engine-workers) and profiling enabled
# (-pprof), check health and metrics (including latency histogram
# buckets and a CPU profile fetch), submit the same run twice and
# assert the second is answered from the result cache — including a
# resubmission with a different "workers" value, which must still hit
# (the cache key ignores the execution-only Workers field) — fetch the
# job's lifecycle trace, then shut down gracefully with SIGTERM. No
# dependencies beyond curl and the Go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)/ringmeshd
log=$(mktemp)
go build -o "$bin" ./cmd/ringmeshd

"$bin" -addr 127.0.0.1:0 -engine-workers 2 -pprof >"$log" 2>&1 &
pid=$!
cleanup() { kill "$pid" 2>/dev/null || true; }
trap cleanup EXIT

# The daemon logs its resolved ephemeral address on startup as a
# structured "listening" event with an addr= attribute.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/.*msg=listening addr=\([0-9.:]*\).*/\1/p' "$log" | head -n 1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "FAIL: ringmeshd did not start"; cat "$log"; exit 1
fi
base="http://$addr"

curl -fsS "$base/healthz" | grep -q '"ok"' || { echo "FAIL: healthz"; exit 1; }

body='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":42},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'

first=$(curl -fsS -X POST "$base/v1/runs" -d "$body" | tr -d '[:space:]')
id=$(printf '%s' "$first" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
if [ -z "$id" ]; then
  echo "FAIL: no job id in response: $first"; exit 1
fi

doc=""
for _ in $(seq 1 200); do
  doc=$(curl -fsS "$base/v1/jobs/$id" | tr -d '[:space:]')
  case "$doc" in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'*) echo "FAIL: job failed: $doc"; exit 1 ;;
  esac
  sleep 0.1
done
case "$doc" in
  *'"state":"done"'*) ;;
  *) echo "FAIL: job never finished: $doc"; exit 1 ;;
esac

second=$(curl -fsS -X POST "$base/v1/runs" -d "$body" | tr -d '[:space:]')
case "$second" in
  *'"cached":true'*) ;;
  *) echo "FAIL: identical resubmission not served from cache: $second"; exit 1 ;;
esac
case "$second" in
  *'"state":"done"'*) ;;
  *) echo "FAIL: cached resubmission not complete: $second"; exit 1 ;;
esac

# The same logical run spelled with an explicit engine worker count
# must still hit the cache: "workers" is execution-only (the parallel
# engine is bit-identical to serial) and never enters the cache key.
wbody='{"config":{"network":"mesh","nodes":16,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":42,"workers":4},"options":{"warmup_cycles":500,"batch_cycles":500,"batches":2}}'
third=$(curl -fsS -X POST "$base/v1/runs" -d "$wbody" | tr -d '[:space:]')
case "$third" in
  *'"cached":true'*) ;;
  *) echo "FAIL: resubmission with workers=4 not served from cache: $third"; exit 1 ;;
esac

metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^ringmeshd_cache_hits_total [1-9]' \
  || { echo "FAIL: no cache hit recorded:"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^ringmeshd_cache_misses_total 1$' \
  || { echo "FAIL: expected exactly one cache miss:"; echo "$metrics"; exit 1; }
# Telemetry: the completed job left run-duration histogram buckets
# labeled by family and outcome, and runtime health gauges are live.
echo "$metrics" | grep -q 'ringmeshd_job_run_seconds_bucket{family="mesh",outcome="done",le="+Inf"}' \
  || { echo "FAIL: no run-duration histogram buckets:"; echo "$metrics"; exit 1; }
echo "$metrics" | grep -q '^go_goroutines ' \
  || { echo "FAIL: no runtime gauges:"; echo "$metrics"; exit 1; }

# The job's lifecycle trace is served as Chrome trace-event JSON.
trace=$(curl -fsS "$base/v1/jobs/$id/trace")
case "$trace" in
  *'"traceEvents"'*'"queue-wait"'*) ;;
  *) echo "FAIL: job trace missing lifecycle spans: $trace"; exit 1 ;;
esac

# Profiling is mounted (we booted with -pprof): a 1-second CPU profile
# must come back non-empty.
prof=$(mktemp)
curl -fsS -o "$prof" "$base/debug/pprof/profile?seconds=1" \
  || { echo "FAIL: pprof profile fetch"; exit 1; }
[ -s "$prof" ] || { echo "FAIL: empty CPU profile"; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
  echo "FAIL: ringmeshd exited $rc on SIGTERM"; cat "$log"; exit 1
fi

echo "PASS: ringmeshd smoke ($base, job $id cached on resubmission)"
