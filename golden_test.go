package ringmesh

import (
	"reflect"
	"testing"
)

// Golden determinism tests: the exact Result values below were
// captured from the simulator at a pinned seed and must never change
// unintentionally. Any refactor of the engine, the network models, or
// the assembly layers has to reproduce these numbers bit for bit —
// same seed, same throughput and latency — or it has changed the
// simulation, not just the code. Update the constants only when a
// deliberate modelling change is made (and say so in DESIGN.md).

const goldenSeed = 12345

// goldenCase pairs a configuration with its pinned result.
type goldenCase struct {
	name string
	cfg  Config
	opt  RunOptions
	want Result
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			// The paper's base 3-level hierarchy class (2:3:4 = 24 PMs,
			// 32B lines) under the default batch-means schedule.
			name: "ring-2:3:4-32B",
			cfg: Config{
				Network:   "ring",
				Topology:  "2:3:4",
				LineBytes: 32,
				Workload:  PaperWorkload(),
				Seed:      goldenSeed,
			},
			opt: DefaultRunOptions(),
			want: Result{
				LatencyCycles:   123.063309432494,
				LatencyCI95:     2.7550844897939086,
				Observations:    17991,
				RingUtilization: []float64{0.589875, 0.78043359375, 0.34932708333333334},
				Throughput:      0.56221875,
				Issued:          20284,
				Completed:       20202,
				Local:           907,
			},
		},
		{
			// Multi-rate clocking path: double-speed global ring.
			name: "ring-3:3:8-32B-double-global",
			cfg: Config{
				Network:           "ring",
				Topology:          "3:3:8",
				LineBytes:         32,
				DoubleSpeedGlobal: true,
				Workload:          PaperWorkload(),
				Seed:              goldenSeed,
			},
			opt: QuickRunOptions(),
			want: Result{
				LatencyCycles:   231.5663815544812,
				LatencyCI95:     23.67944838193414,
				Observations:    2689,
				RingUtilization: []float64{0.44945833333333335, 0.7091875, 0.28525617283950616},
				Throughput:      0.67225,
				Issued:          3560,
				Completed:       3297,
				Local:           45,
				Saturated:       true,
			},
		},
		{
			// The slotted-ring switching extension.
			name: "ring-2:3:4-32B-slotted",
			cfg: Config{
				Network:          "ring",
				Topology:         "2:3:4",
				LineBytes:        32,
				SlottedSwitching: true,
				Workload:         PaperWorkload(),
				Seed:             goldenSeed,
			},
			opt: QuickRunOptions(),
			want: Result{
				LatencyCycles:   295.7957931638913,
				LatencyCI95:     67.59497117213412,
				Observations:    1141,
				RingUtilization: []float64{0.6856714178544636, 0.7345273818454614, 0.5962990747686921},
				Throughput:      0.28525,
				Issued:          1476,
				Completed:       1387,
				Local:           57,
				Saturated:       true,
			},
		},
		{
			// An 8x8 mesh with the paper's 4-flit buffers.
			name: "mesh-8x8-32B-4flit",
			cfg: Config{
				Network:     "mesh",
				Nodes:       64,
				LineBytes:   32,
				BufferFlits: 4,
				Workload:    PaperWorkload(),
				Seed:        goldenSeed,
			},
			opt: DefaultRunOptions(),
			want: Result{
				LatencyCycles:   229.95306202054368,
				LatencyCI95:     2.9453719190896175,
				Observations:    30764,
				MeshUtilization: 0.35379045758928573,
				Throughput:      0.961375,
				Issued:          34761,
				Completed:       34538,
				Local:           583,
				Saturated:       true,
			},
		},
	}
}

func TestGoldenResults(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			got, err := Run(tc.cfg, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("golden mismatch\n got: %#v\nwant: %#v", got, tc.want)
			}
		})
	}
}

// TestGoldenResultsWithEmptyFaultPlan re-runs every golden case with
// fault injection enabled but the plan empty ("none") and demands the
// same Results bit for bit: the fault subsystem must be zero-cost —
// and zero-effect — until a plan actually schedules an event.
func TestGoldenResultsWithEmptyFaultPlan(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.FaultPlan = "none"
			got, err := Run(cfg, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("empty fault plan changed the simulation\n got: %#v\nwant: %#v", got, tc.want)
			}
		})
	}
}

// TestGoldenResultsWithMetrics re-runs every golden case with the
// instrument registry and sampler attached and demands the same
// Results bit for bit: metrics are observation-only, so enabling them
// must never perturb the simulation.
func TestGoldenResultsWithMetrics(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Metrics = true
			cfg.MetricsIntervalCycles = 50
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sys.Run(tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("metrics changed the simulation\n got: %#v\nwant: %#v", got, tc.want)
			}
			if len(sys.MetricNames()) == 0 || len(sys.MetricSamples()) == 0 {
				t.Errorf("metrics enabled but empty: %d series, %d samples",
					len(sys.MetricNames()), len(sys.MetricSamples()))
			}
		})
	}
}

// TestMetricsGlobalRingRunsHotter checks the instrumented utilization
// reproduces the paper's qualitative hierarchy behaviour: under
// uniform traffic (R=1.0) the upper rings carry the concentrated
// cross-cluster load, so the global ring's link utilization exceeds
// the local rings'.
func TestMetricsGlobalRingRunsHotter(t *testing.T) {
	sys, err := NewSystem(Config{
		Network:               "ring",
		Topology:              "2:3:8",
		LineBytes:             32,
		Workload:              PaperWorkload(),
		Seed:                  goldenSeed,
		Metrics:               true,
		MetricsIntervalCycles: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	global, local := res.RingUtilization[0], res.RingUtilization[len(res.RingUtilization)-1]
	if !(global > local) {
		t.Fatalf("global ring util %.3f not above local %.3f at R=1.0", global, local)
	}
	// The sampled series must agree with the aggregate ordering.
	names := sys.MetricNames()
	gi, li := -1, -1
	for i, k := range names {
		switch k {
		case "ring_link_util{link=L0}":
			gi = i
		case "ring_link_util{link=L2}":
			li = i
		}
	}
	if gi < 0 || li < 0 {
		t.Fatalf("ring_link_util series missing from %v", names)
	}
	var gSum, lSum float64
	samples := sys.MetricSamples()
	if len(samples) == 0 {
		t.Fatal("no metric samples")
	}
	for _, row := range samples {
		gSum += row.Values[gi]
		lSum += row.Values[li]
	}
	if !(gSum > lSum) {
		t.Fatalf("sampled global util %.3f not above local %.3f", gSum/float64(len(samples)), lSum/float64(len(samples)))
	}
}

// TestGoldenResultsViaDeprecatedAPI pins the thin RunRing/RunMesh
// wrappers to the same numbers as the generic Run path: the wrappers
// must be pure repackaging, never a second pipeline.
func TestGoldenResultsViaDeprecatedAPI(t *testing.T) {
	base := goldenCases()[0]
	got, err := RunRing(RingConfig{
		Topology:  base.cfg.Topology,
		LineBytes: base.cfg.LineBytes,
		Workload:  base.cfg.Workload,
		Seed:      base.cfg.Seed,
	}, base.opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base.want) {
		t.Errorf("RunRing diverged from generic Run\n got: %#v\nwant: %#v", got, base.want)
	}

	meshCase := goldenCases()[3]
	gotMesh, err := RunMesh(MeshConfig{
		Nodes:       meshCase.cfg.Nodes,
		LineBytes:   meshCase.cfg.LineBytes,
		BufferFlits: meshCase.cfg.BufferFlits,
		Workload:    meshCase.cfg.Workload,
		Seed:        meshCase.cfg.Seed,
	}, meshCase.opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMesh, meshCase.want) {
		t.Errorf("RunMesh diverged from generic Run\n got: %#v\nwant: %#v", gotMesh, meshCase.want)
	}
}
