package ringmesh

import (
	"reflect"
	"runtime"
	"testing"
)

// Parallel determinism tests: the sharded worker engine must be an
// execution detail, invisible in every Result bit. Each golden
// configuration runs at Workers 1 (the exact serial path), 2, and
// NumCPU, and all results must be deeply equal — including the
// order-dependent Welford statistics behind LatencyCycles and
// LatencyCI95, which the parallel engine reproduces by draining
// per-PM completion cells in the serial delivery order. These tests
// are the bit-identity gate for the Workers mode and run under -race
// in CI.

// parallelWorkerCounts returns the worker counts to pin against the
// serial result, deduplicated (NumCPU may be 1, in which case workers
// still interleave correctness-visibly on one core).
func parallelWorkerCounts() []int {
	counts := []int{2, 4}
	if n := runtime.NumCPU(); n > 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// parallelCases returns every golden configuration on a Quick
// schedule: the pinned Default-schedule results stay covered by
// TestGoldenResults, while the Workers sweep — several runs per case —
// stays fast enough for -race on one core.
func parallelCases() []goldenCase {
	cases := goldenCases()
	for i := range cases {
		cases[i].opt = QuickRunOptions()
	}
	return cases
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range parallelCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial, err := Run(tc.cfg, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range parallelWorkerCounts() {
				cfg := tc.cfg
				cfg.Workers = workers
				sys, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !sys.Parallel() {
					t.Fatalf("Workers=%d did not engage the parallel engine", workers)
				}
				got, err := sys.Run(tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Errorf("Workers=%d diverged from serial\n got: %#v\nwant: %#v",
						workers, got, serial)
				}
			}
		})
	}
}

// TestParallelMatchesPinnedGoldens re-checks the two golden cases
// whose pinned constants already use the Quick schedule directly
// against those constants at Workers=NumCPU — closing the loop from
// the parallel engine all the way to the captured numbers, not just
// to a same-process serial run.
func TestParallelMatchesPinnedGoldens(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		if tc.opt != QuickRunOptions() {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Workers = runtime.NumCPU() + 1 // also exercises the shard clamp
			got, err := Run(cfg, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parallel run diverged from pinned golden\n got: %#v\nwant: %#v", got, tc.want)
			}
		})
	}
}

// TestParallelFallsBackSerially pins the decline paths: Workers on a
// model surface that cannot shard (a 1-row... no such mesh is
// buildable, so the single-ring hierarchy), and Workers combined with
// tracing, must run — correctly — on the serial engine.
func TestParallelFallsBackSerially(t *testing.T) {
	t.Parallel()
	single := Config{
		Network:   "ring",
		Topology:  "8",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      goldenSeed,
		Workers:   4,
	}
	sys, err := NewSystem(single)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Parallel() {
		t.Error("single-ring hierarchy has nothing to shard; want serial fallback")
	}
	if _, err := sys.Run(QuickRunOptions()); err != nil {
		t.Fatal(err)
	}

	traced := goldenCases()[0].cfg
	traced.Workers = 4
	traced.Trace = true
	tsys, err := NewSystem(traced)
	if err != nil {
		t.Fatal(err)
	}
	if tsys.Parallel() {
		t.Error("tracing is unsynchronized; want serial fallback with Workers set")
	}
}
