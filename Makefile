GO ?= go

.PHONY: all build test vet staticcheck race bench-smoke bench-guard bench-baseline smoke-ringmeshd ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Skipped with a note when the tool isn't installed, so `make ci`
# works on a bare toolchain; CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short benchmark pass that exercises the engine fast paths without
# running the full figure sweeps.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkEngineStep|BenchmarkSimRing24|BenchmarkSimMesh16' -benchtime=100x .

# Fail if the engine hot loop regressed >15% vs ci/bench-baseline.txt.
# Guards both the serial dispatch path and the sharded parallel tick
# (Workers=2 on the 8x8 mesh, one shard per row).
bench-guard:
	$(GO) run ./cmd/benchguard
	$(GO) run ./cmd/benchguard -bench BenchmarkEngineStepParallel2

# Re-record the hot-loop baselines (after an intentional change).
bench-baseline:
	$(GO) run ./cmd/benchguard -update
	$(GO) run ./cmd/benchguard -bench BenchmarkEngineStepParallel1 -update
	$(GO) run ./cmd/benchguard -bench BenchmarkEngineStepParallel2 -update

# Boot the serving daemon, submit the same run twice, and assert the
# second is answered from the result cache (end-to-end, over HTTP).
smoke-ringmeshd:
	bash ci/smoke_ringmeshd.sh

# The gate run by .github/workflows/ci.yml.
ci: vet staticcheck build race bench-smoke bench-guard smoke-ringmeshd
