GO ?= go

.PHONY: all build test vet staticcheck race bench-smoke bench-guard bench-baseline profile smoke-ringmeshd fuzz-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Skipped with a note when the tool isn't installed, so `make ci`
# works on a bare toolchain; CI installs it explicitly.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short benchmark pass that exercises the engine fast paths without
# running the full figure sweeps.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkEngineStep|BenchmarkSimRing24|BenchmarkSimMesh16' -benchtime=100x .

# Fail if the engine hot loop regressed >15% vs ci/bench-baseline.txt.
# Guards both the serial dispatch path and the sharded parallel tick
# (Workers=2 on the 8x8 mesh, one shard per row); every guarded
# benchmark is measured even after one regresses, so the report names
# each offender and its slowdown.
bench-guard:
	$(GO) run ./cmd/benchguard -bench BenchmarkEngineStepUniform,BenchmarkEngineStepParallel2,BenchmarkAnalyticEstimate

# Re-record the hot-loop baselines (after an intentional change).
bench-baseline:
	$(GO) run ./cmd/benchguard -update -bench BenchmarkEngineStepUniform,BenchmarkEngineStepParallel1,BenchmarkEngineStepParallel2,BenchmarkAnalyticEstimate

# CPU- and heap-profile the engine hot loop; inspect the output with
# `go tool pprof cpu.prof`. For live profiles of the serving daemon,
# boot it with -pprof and fetch /debug/pprof/profile instead.
profile:
	$(GO) test -run=NONE -bench=BenchmarkEngineStepUniform -benchtime=20000x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "profiles written: cpu.prof mem.prof (go tool pprof <file>)"

# Boot the serving daemon, submit the same run twice, and assert the
# second is answered from the result cache (end-to-end, over HTTP).
smoke-ringmeshd:
	bash ci/smoke_ringmeshd.sh

# A short native-fuzz pass over the hostile-input parsers: the fault
# plan DSL and the job-journal record decoder must never panic. The
# seed corpora also run as plain tests in `make test`; this target
# additionally mutates for a few seconds per target.
fuzz-smoke:
	$(GO) test ./internal/fault -run '^$$' -fuzz FuzzParse -fuzztime 5s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzDecodeRecord -fuzztime 5s

# The gate run by .github/workflows/ci.yml.
ci: vet staticcheck build race bench-smoke bench-guard fuzz-smoke smoke-ringmeshd
