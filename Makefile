GO ?= go

.PHONY: all build test vet race bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short benchmark pass that exercises the engine fast paths without
# running the full figure sweeps.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkEngineStep|BenchmarkSimRing24|BenchmarkSimMesh16' -benchtime=100x .

# The gate run by .github/workflows/ci.yml.
ci: vet build race bench-smoke
