package ringmesh

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestGoldenResultsWithFullTelemetry re-runs every golden case with
// the complete telemetry stack attached — metrics registry, latency
// histogram, parallel engine with phase-timing — and demands the same
// Results bit for bit once the new distribution fields are scrubbed.
// This is the ISSUE's acceptance gate in one test: percentiles, phase
// stats and the exported histograms are observation-only, so enabling
// them must never perturb the simulation.
func TestGoldenResultsWithFullTelemetry(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Metrics = true
			cfg.MetricsIntervalCycles = 50
			cfg.Histogram = true
			cfg.Workers = 4
			cfg.PhaseStats = true
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sys.Run(tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			// The distribution fields are new information, not a
			// perturbation: they must be populated, then scrub them and
			// demand everything else bit-identical to the pinned result.
			if got.LatencyP50 <= 0 || got.LatencyP95 < got.LatencyP50 ||
				got.LatencyP99 < got.LatencyP95 || got.LatencyMax < got.LatencyP99 {
				t.Errorf("percentiles not populated or not monotone: p50=%g p95=%g p99=%g max=%g",
					got.LatencyP50, got.LatencyP95, got.LatencyP99, got.LatencyMax)
			}
			got.LatencyP50, got.LatencyP95, got.LatencyP99, got.LatencyMax = 0, 0, 0, 0
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("telemetry changed the simulation\n got: %#v\nwant: %#v", got, tc.want)
			}
		})
	}
}

// TestLatencyHistogramExported checks the metrics registry carries the
// latency distribution as a Prometheus histogram series alongside the
// result percentiles.
func TestLatencyHistogramExported(t *testing.T) {
	sys, err := NewSystem(Config{
		Network: "mesh", Nodes: 16, LineBytes: 32, BufferFlits: 4,
		Workload: PaperWorkload(), Seed: goldenSeed,
		Metrics: true, Histogram: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sys.WriteMetricsSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE latency_cycles histogram",
		`latency_cycles_bucket{le="+Inf"} `,
		"latency_cycles_sum",
		"latency_cycles_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
	if res.LatencyP99 < res.LatencyP95 || res.LatencyP99 <= 0 {
		t.Errorf("p99 %g inconsistent with p95 %g", res.LatencyP99, res.LatencyP95)
	}
}

// TestPhaseStatsConsistentWithWallTime runs the parallel engine at
// Workers=4 with phase timing enabled and checks the accounting is
// physically consistent: every shard accumulated compute and commit
// time, the tick count matches the schedule, and no worker's measured
// busy time exceeds the run's wall-clock time (its measured intervals
// are disjoint on one goroutine).
func TestPhaseStatsConsistentWithWallTime(t *testing.T) {
	const workers = 4
	sys, err := NewSystem(Config{
		Network: "mesh", Nodes: 64, LineBytes: 32, BufferFlits: 4,
		Workload: PaperWorkload(), Seed: goldenSeed,
		Workers: workers, PhaseStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Parallel() {
		t.Fatal("mesh-8x8 did not partition at Workers=4")
	}
	start := time.Now()
	if _, err := sys.Run(QuickRunOptions()); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	ps := sys.PhaseStats()
	if ps == nil {
		t.Fatal("PhaseStats nil after a parallel run with PhaseStats set")
	}
	// QuickRunOptions: 1000 warmup + 4x1000 batch cycles, 1 tick/cycle.
	if ps.Ticks != 5000 {
		t.Errorf("ps.Ticks = %d, want 5000", ps.Ticks)
	}
	if len(ps.Barrier) != workers {
		t.Fatalf("got %d worker barrier digests, want %d", len(ps.Barrier), workers)
	}
	for i := range ps.Shards {
		s := &ps.Shards[i]
		if s.Name == "" {
			t.Errorf("shard %d unnamed", i)
		}
		if s.ComputeNS <= 0 || s.CommitNS <= 0 {
			t.Errorf("shard %q has empty phase time: compute=%d commit=%d",
				s.Name, s.ComputeNS, s.CommitNS)
		}
	}
	// Per-worker busy time (its shards' compute+commit, measured as
	// disjoint intervals on one goroutine) cannot exceed wall time.
	// The engine block-partitions shards: worker w owns [w*n/W, (w+1)*n/W).
	n := len(ps.Shards)
	for w := 0; w < workers; w++ {
		var busy int64
		for i := w * n / workers; i < (w+1)*n/workers; i++ {
			busy += ps.Shards[i].ComputeNS + ps.Shards[i].CommitNS
		}
		if busy > int64(wall) {
			t.Errorf("worker %d measured busy %v exceeds wall %v",
				w, time.Duration(busy), wall)
		}
		if ps.Barrier[w].Count() == 0 {
			t.Errorf("worker %d recorded no barrier waits", w)
		}
	}
	// And the total across all workers is bounded by workers x wall.
	total := ps.TotalComputeNS() + ps.TotalCommitNS()
	if total > int64(wall)*workers {
		t.Errorf("total phase time %v exceeds %d x wall %v",
			time.Duration(total), workers, wall)
	}
}

// TestPhaseStatsNilOnSerialPath checks the accessor stays nil when the
// engine runs serially (no Workers) even with PhaseStats requested.
func TestPhaseStatsNilOnSerialPath(t *testing.T) {
	sys, err := NewSystem(Config{
		Network: "mesh", Nodes: 16, LineBytes: 32, BufferFlits: 4,
		Workload: PaperWorkload(), Seed: goldenSeed,
		PhaseStats: true, // no Workers: serial path
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.PhaseStats() != nil {
		t.Fatal("PhaseStats non-nil on the serial path")
	}
}
