// Double-speed global ring: the paper's Section 6 modification.
// Because the global ring is a small part of the machine, it can be
// built from faster (or wider) technology; clocking it at twice the
// PM rate doubles the hierarchy's bisection bandwidth and lets the
// third-level ring sustain five instead of three second-level rings.
//
// Run with:
//
//	go run ./examples/doublespeed
package main

import (
	"fmt"
	"log"

	"ringmesh"
)

func main() {
	const lineBytes = 128
	opt := ringmesh.DefaultRunOptions()

	// 3-level hierarchies with j second-level rings, each maxed out at
	// 3 local rings of 4 PMs (the 128B-line single-ring capacity).
	fmt.Printf("3-level hierarchies, %dB lines, R=1.0 C=0.04 T=4\n\n", lineBytes)
	fmt.Printf("%-10s %-6s  %-26s  %-26s\n", "topology", "PMs", "normal-speed global", "double-speed global")

	for j := 2; j <= 8; j++ {
		topoStr := fmt.Sprintf("%d:3:4", j)
		pms := j * 12
		if pms > 121 {
			break
		}
		var lat [2]float64
		var util [2]float64
		var sat [2]bool
		for i, dbl := range []bool{false, true} {
			res, err := ringmesh.RunRing(ringmesh.RingConfig{
				Topology:          topoStr,
				LineBytes:         lineBytes,
				DoubleSpeedGlobal: dbl,
				Workload:          ringmesh.PaperWorkload(),
				Seed:              1,
			}, opt)
			if err != nil {
				log.Fatal(err)
			}
			lat[i] = res.LatencyCycles
			util[i] = res.RingUtilization[0]
			sat[i] = res.Saturated
		}
		note := func(i int) string {
			if sat[i] {
				return " sat."
			}
			return ""
		}
		fmt.Printf("%-10s %-6d  %8.1f cyc, glob %3.0f%%%-5s  %8.1f cyc, glob %3.0f%%%-5s  (%.0f%% faster)\n",
			topoStr, pms,
			lat[0], 100*util[0], note(0),
			lat[1], 100*util[1], note(1),
			100*(1-lat[1]/lat[0]))
	}

	fmt.Println("\nThe double-speed global ring defers the bisection-bandwidth wall:")
	fmt.Println("utilization of the global ring grows more slowly, so more second-level")
	fmt.Println("rings can be attached before latency explodes (paper Figures 19-20).")
}
