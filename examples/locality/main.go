// Locality study: how memory access locality (the M-MRP R parameter)
// changes the ring-vs-mesh comparison — the question behind the
// paper's Figure 17. Section 1 of the paper motivates hierarchical
// rings precisely because "their topology allows natural exploitation
// of the spatial locality of application memory access patterns".
//
// Run with:
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"log"

	"ringmesh"
)

func main() {
	const lineBytes = 64
	opt := ringmesh.DefaultRunOptions()

	fmt.Printf("54-processor ring (3:3:6) vs 49-processor mesh (7x7), %dB lines\n\n", lineBytes)
	fmt.Printf("%-6s  %-28s  %-28s\n", "R", "ring latency (cycles)", "mesh latency (cycles)")

	for _, r := range []float64{0.1, 0.2, 0.3, 0.5, 1.0} {
		wl := ringmesh.PaperWorkload()
		wl.R = r

		ringRes, err := ringmesh.RunRing(ringmesh.RingConfig{
			Topology:  "3:3:6", // paper Table 2 for 54 PMs at 64B
			LineBytes: lineBytes,
			Workload:  wl,
			Seed:      1,
		}, opt)
		if err != nil {
			log.Fatal(err)
		}
		meshRes, err := ringmesh.RunMesh(ringmesh.MeshConfig{
			Nodes:       49,
			LineBytes:   lineBytes,
			BufferFlits: 4,
			Workload:    wl,
			Seed:        1,
		}, opt)
		if err != nil {
			log.Fatal(err)
		}
		winner := "mesh"
		if ringRes.LatencyCycles < meshRes.LatencyCycles {
			winner = "ring"
		}
		fmt.Printf("%-6.1f  %7.1f ±%-5.1f (global %2.0f%%)   %7.1f ±%-5.1f (links %2.0f%%)   -> %s\n",
			r,
			ringRes.LatencyCycles, ringRes.LatencyCI95, 100*ringRes.RingUtilization[0],
			meshRes.LatencyCycles, meshRes.LatencyCI95, 100*meshRes.MeshUtilization,
			winner)
	}

	fmt.Println("\nWith strong locality (small R) traffic stays on the local rings and")
	fmt.Println("the ring hierarchy's constant bisection bandwidth stops mattering;")
	fmt.Println("with R=1.0 the global ring saturates and the mesh pulls ahead.")
}
