// Observability: latency distributions, per-packet tracing and
// sampled metrics. The paper reports mean round-trip latency; this
// example shows what the mean hides — tail latency under congestion —
// follows a single packet through the hierarchy hop by hop, and
// watches the per-level link utilization over time to see which ring
// saturates first.
//
// Run with:
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"strings"

	"ringmesh"
)

func main() {
	// 1. Latency distribution: mean vs median vs tail on a loaded
	// 48-processor hierarchy.
	fmt.Println("latency distribution, ring 2:3:8 (48 PMs), 32B lines, R=1.0:")
	res, err := ringmesh.RunRing(ringmesh.RingConfig{
		Topology:  "2:3:8",
		LineBytes: 32,
		Workload:  ringmesh.PaperWorkload(),
		Seed:      1,
		Histogram: true,
	}, ringmesh.DefaultRunOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean %7.1f cycles\n", res.LatencyCycles)
	fmt.Printf("  p50  %7.1f cycles\n", res.LatencyP50)
	fmt.Printf("  p95  %7.1f cycles\n", res.LatencyP95)
	fmt.Printf("  max  %7.1f cycles\n", res.LatencyMax)
	skew := res.LatencyP95 / res.LatencyP50
	fmt.Printf("  p95/p50 = %.1fx — wormhole blocking makes the tail heavy\n\n", skew)

	// 2. Trace one packet end to end across the hierarchy.
	sys, err := ringmesh.NewRingSystem(ringmesh.RingConfig{
		Topology:  "2:3:4",
		LineBytes: 64,
		Workload:  ringmesh.PaperWorkload(),
		Seed:      7,
		Trace:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StepCycles(300); err != nil {
		log.Fatal(err)
	}
	// Pick the first packet that crossed at least one inter-ring
	// interface (it has an "exit" event) and was delivered.
	var chosen uint64
	crossed := map[uint64]bool{}
	for _, e := range sys.TraceEvents() {
		if e.Kind == "exit" {
			crossed[e.Packet] = true
		}
		if e.Kind == "deliver" && crossed[e.Packet] && chosen == 0 {
			chosen = e.Packet
		}
	}
	if chosen == 0 {
		log.Fatal("no cross-ring packet delivered in the window")
	}
	fmt.Printf("lifecycle of packet #%d (crossed the hierarchy):\n", chosen)
	for _, e := range sys.PacketTimeline(chosen) {
		fmt.Printf("  t=%-5d %-8s %s %d->%d  @ %s\n",
			e.Tick, e.Kind, e.Type, e.Src, e.Dst, e.Where)
	}
	fmt.Println("\nEach 'hop' is one station-to-station link (1 cycle); 'exit' events")
	fmt.Println("mark transfers into an inter-ring interface's up/down queue.")

	// 3. Instantaneous load via the per-cycle engine hook: sample the
	// number of flit movements each cycle over a window and bucket the
	// samples into a coarse activity profile.
	const window = 2000
	var samples []uint64
	sys.OnCycle(func(tick int64, moved uint64) {
		samples = append(samples, moved)
	})
	if err := sys.StepCycles(window); err != nil {
		log.Fatal(err)
	}
	sys.OnCycle(nil)
	var peak uint64
	for _, m := range samples {
		if m > peak {
			peak = m
		}
	}
	// An idle window (no samples, or no flit ever moved) has nothing
	// to bucket; dividing by len(samples) or indexing by peak would
	// fault on it.
	if len(samples) == 0 || peak == 0 {
		fmt.Println("\nidle window: no flit movement to profile")
	} else {
		buckets := make([]int, 8)
		for _, m := range samples {
			buckets[int(m)*len(buckets)/(int(peak)+1)]++
		}
		fmt.Printf("\nper-cycle flit movement over %d cycles (peak %d flits/cycle):\n", len(samples), peak)
		for i, n := range buckets {
			lo := i * (int(peak) + 1) / len(buckets)
			hi := (i+1)*(int(peak)+1)/len(buckets) - 1
			bar := strings.Repeat("#", 50*n/len(samples))
			fmt.Printf("  %3d-%-3d flits %6.1f%% %s\n", lo, hi, 100*float64(n)/float64(len(samples)), bar)
		}
	}
	fmt.Println("\nThe hook fires every engine tick, so instantaneous-load traces")
	fmt.Println("attach outside the network models instead of instrumenting them.")

	// 4. Sampled metrics: per-level link utilization over time on a
	// loaded hierarchy. The sampler snapshots the registry every N
	// cycles, so each row is that window's utilization — watch the
	// upper rings fill up while the local rings stay comfortable: the
	// hierarchy's bisection is the bottleneck, the paper's central
	// result for uniform (R=1.0) traffic.
	msys, err := ringmesh.NewSystem(ringmesh.Config{
		Network:               "ring",
		Topology:              "2:3:8",
		LineBytes:             32,
		Workload:              ringmesh.PaperWorkload(),
		Seed:                  1,
		Metrics:               true,
		MetricsIntervalCycles: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := msys.StepCycles(4000); err != nil {
		log.Fatal(err)
	}
	names := msys.MetricNames()
	var cols []int
	for i, k := range names {
		if strings.HasPrefix(k, "ring_link_util{") {
			cols = append(cols, i)
		}
	}
	fmt.Println("\nper-level ring link utilization over time (ring 2:3:8, R=1.0):")
	fmt.Printf("  %8s", "cycle")
	for _, c := range cols {
		lvl := strings.TrimSuffix(strings.TrimPrefix(names[c], "ring_link_util{link="), "}")
		switch {
		case lvl == "L0":
			lvl = "global"
		case c == cols[len(cols)-1]:
			lvl = "local"
		}
		fmt.Printf("  %6s", lvl)
	}
	fmt.Println()
	for _, row := range msys.MetricSamples() {
		fmt.Printf("  %8d", row.Cycle)
		for _, c := range cols {
			fmt.Printf("  %5.1f%%", 100*row.Values[c])
		}
		fmt.Println()
	}
	fmt.Println("\nThe upper levels run far hotter than the locals from the first")
	fmt.Println("window: under uniform traffic most transactions must climb the")
	fmt.Println("hierarchy, so its narrow top is what saturates — the reason the")
	fmt.Println("paper caps single-ring sizes and meshes scale better at R=1.0.")
}
