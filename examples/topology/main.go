// Topology exploration: for a machine size, enumerate every
// admissible ring hierarchy and rank it at two fidelities — the
// simulation procedure behind the paper's Table 2 ("the topology of a
// hierarchical ring system greatly affects its performance").
//
// Every candidate is first scored through the fidelity registry's
// analytic backend (microseconds per topology, labeled with its
// recorded error bound); only the top few estimates are then measured
// exactly, showing estimate and simulation side by side.
//
// Run with:
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"
	"sort"

	"ringmesh"
)

func main() {
	const (
		nodes     = 36
		lineBytes = 64
		exactTop  = 3 // simulate only the best few estimates
	)
	wl := ringmesh.PaperWorkload()
	opt := ringmesh.DefaultRunOptions()

	candidates := ringmesh.EnumerateRingTopologies(
		nodes,
		4, // at most four levels
		3, // at most three children per internal ring (bisection limit)
		ringmesh.SingleRingCapacity(lineBytes),
	)
	if len(candidates) == 0 {
		log.Fatalf("no admissible topology for %d nodes", nodes)
	}

	config := func(topo, fidelity string) ringmesh.Config {
		return ringmesh.Config{
			Network:   "ring",
			Topology:  topo,
			LineBytes: lineBytes,
			Workload:  wl,
			Seed:      1,
			Fidelity:  fidelity,
		}
	}

	// Fast pass: one closed-form estimate per candidate.
	type scored struct {
		topo  string
		est   ringmesh.Result
		exact *ringmesh.Result
	}
	results := make([]scored, 0, len(candidates))
	for _, c := range candidates {
		res, err := ringmesh.Estimate(config(c, "analytic"), opt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{topo: c, est: res})
	}
	sort.Slice(results, func(i, j int) bool {
		return results[i].est.LatencyCycles < results[j].est.LatencyCycles
	})

	// Exact pass: simulate only the frontrunners.
	for i := 0; i < exactTop && i < len(results); i++ {
		res, err := ringmesh.Run(config(results[i].topo, ""), opt)
		if err != nil {
			log.Fatal(err)
		}
		results[i].exact = &res
	}

	fmt.Printf("candidate hierarchies for %d processors, %dB cache lines,\n", nodes, lineBytes)
	fmt.Printf("under R=%.1f C=%.2f T=%d (best analytic estimate first):\n\n", wl.R, wl.C, wl.T)
	fmt.Printf("   %-10s %-18s %s\n", "topology", "analytic estimate", "exact simulation")
	for i, r := range results {
		marker := "   "
		if i == 0 {
			marker = " * "
		}
		exact := "-"
		if r.exact != nil {
			exact = fmt.Sprintf("%.1f cycles ±%.1f", r.exact.LatencyCycles, r.exact.LatencyCI95)
		}
		fmt.Printf("%s%-10s %-18s %s\n", marker, r.topo,
			fmt.Sprintf("%.1f cycles", r.est.LatencyCycles), exact)
	}
	if b := results[0].est.ErrorBound; b != nil {
		fmt.Printf("\nanalytic estimates validated to max rel err %.1f%% at low load\n(%s).\n",
			100*b.MaxRelErr, b.Basis)
	}

	analytic, err := ringmesh.OptimalRingTopology(nodes, lineBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytic choice (depth, then average hop distance): %s\n", analytic)
	fmt.Println("paper Table 2 lists 2:3:6 for this configuration.")
}
