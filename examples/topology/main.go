// Topology exploration: for a machine size, enumerate every
// admissible ring hierarchy and measure each one — the simulation
// procedure behind the paper's Table 2 ("the topology of a
// hierarchical ring system greatly affects its performance").
//
// Run with:
//
//	go run ./examples/topology
package main

import (
	"fmt"
	"log"
	"sort"

	"ringmesh"
)

func main() {
	const (
		nodes     = 36
		lineBytes = 64
	)
	wl := ringmesh.PaperWorkload()
	opt := ringmesh.DefaultRunOptions()

	candidates := ringmesh.EnumerateRingTopologies(
		nodes,
		4, // at most four levels
		3, // at most three children per internal ring (bisection limit)
		ringmesh.SingleRingCapacity(lineBytes),
	)
	if len(candidates) == 0 {
		log.Fatalf("no admissible topology for %d nodes", nodes)
	}

	type scored struct {
		topo string
		lat  float64
		ci   float64
	}
	results := make([]scored, 0, len(candidates))
	for _, c := range candidates {
		res, err := ringmesh.RunRing(ringmesh.RingConfig{
			Topology:  c,
			LineBytes: lineBytes,
			Workload:  wl,
			Seed:      1,
		}, opt)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, scored{topo: c, lat: res.LatencyCycles, ci: res.LatencyCI95})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].lat < results[j].lat })

	fmt.Printf("candidate hierarchies for %d processors, %dB cache lines,\n", nodes, lineBytes)
	fmt.Printf("measured under R=1.0 C=0.04 T=4 (best first):\n\n")
	for i, r := range results {
		marker := "   "
		if i == 0 {
			marker = " * "
		}
		fmt.Printf("%s%-10s %8.1f cycles  ±%.1f\n", marker, r.topo, r.lat, r.ci)
	}

	analytic, err := ringmesh.OptimalRingTopology(nodes, lineBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytic choice (depth, then average hop distance): %s\n", analytic)
	fmt.Println("paper Table 2 lists 2:3:6 for this configuration.")
}
