// Quickstart: simulate a 72-processor machine with both interconnects
// under the paper's baseline workload and compare the primary metric.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ringmesh"
)

func main() {
	wl := ringmesh.PaperWorkload() // R=1.0, C=0.04, T=4, 70% reads
	opt := ringmesh.DefaultRunOptions()

	// A hierarchical ring machine. The topology "3:3:8" is the paper's
	// Table 2 choice for 72 processors with 32-byte cache lines: one
	// global ring connecting 3 intermediate rings, each connecting 3
	// local rings of 8 processors.
	ringRes, err := ringmesh.RunRing(ringmesh.RingConfig{
		Topology:  "3:3:8",
		LineBytes: 32,
		Workload:  wl,
		Seed:      1,
	}, opt)
	if err != nil {
		log.Fatal(err)
	}

	// The nearest square mesh (8x8 = 64 processors) with the paper's
	// 4-flit router buffers.
	meshRes, err := ringmesh.RunMesh(ringmesh.MeshConfig{
		Nodes:       64,
		LineBytes:   32,
		BufferFlits: 4,
		Workload:    wl,
		Seed:        1,
	}, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("72-processor hierarchical ring (3:3:8), 32B lines:")
	fmt.Printf("  latency    %.1f cycles (95%% CI ±%.1f)\n", ringRes.LatencyCycles, ringRes.LatencyCI95)
	fmt.Printf("  global ring utilization %.0f%%\n", 100*ringRes.RingUtilization[0])
	fmt.Println()
	fmt.Println("64-processor mesh (8x8), 32B lines, 4-flit buffers:")
	fmt.Printf("  latency    %.1f cycles (95%% CI ±%.1f)\n", meshRes.LatencyCycles, meshRes.LatencyCI95)
	fmt.Printf("  network utilization %.0f%%\n", 100*meshRes.MeshUtilization)
	fmt.Println()
	switch {
	case ringRes.LatencyCycles < meshRes.LatencyCycles:
		fmt.Println("-> the ring wins at this size and workload")
	default:
		fmt.Println("-> the mesh wins at this size and workload (the paper's" +
			" cross-over for 32B lines is ~25 processors)")
	}
}
